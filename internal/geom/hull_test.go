package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10), Pt(5, 5), Pt(3, 7)}
	h := ConvexHull(pts)
	if len(h) != 4 {
		t.Fatalf("hull size = %d, want 4 (%v)", len(h), h)
	}
	// CCW orientation.
	if PolygonArea(h) <= 0 {
		t.Error("hull should be counterclockwise")
	}
	if !ApproxEq(PolygonArea(h), 100) {
		t.Errorf("hull area = %v, want 100", PolygonArea(h))
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHull(nil); h != nil {
		t.Error("empty input should give nil hull")
	}
	h := ConvexHull([]Point{Pt(1, 1)})
	if len(h) != 1 {
		t.Errorf("single point hull = %v", h)
	}
	h = ConvexHull([]Point{Pt(1, 1), Pt(1, 1), Pt(2, 2)})
	if len(h) != 2 {
		t.Errorf("duplicate+collinear hull = %v", h)
	}
	// All collinear.
	h = ConvexHull([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)})
	if len(h) != 2 {
		t.Errorf("collinear hull = %v", h)
	}
}

func TestPolygonArea(t *testing.T) {
	sq := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	if a := PolygonArea(sq); !ApproxEq(a, 16) {
		t.Errorf("CCW square area = %v", a)
	}
	// Reverse → negative.
	rev := []Point{Pt(0, 4), Pt(4, 4), Pt(4, 0), Pt(0, 0)}
	if a := PolygonArea(rev); !ApproxEq(a, -16) {
		t.Errorf("CW square area = %v", a)
	}
}

func TestPointInConvexPolygon(t *testing.T) {
	sq := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	if !PointInConvexPolygon(Pt(2, 2), sq) {
		t.Error("interior rejected")
	}
	if !PointInConvexPolygon(Pt(0, 2), sq) {
		t.Error("boundary rejected")
	}
	if PointInConvexPolygon(Pt(5, 2), sq) {
		t.Error("exterior accepted")
	}
	if PointInConvexPolygon(Pt(2, 2), sq[:2]) {
		t.Error("degenerate polygon should contain nothing")
	}
}

// Property: every input point lies inside or on the hull.
func TestHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(40)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		h := ConvexHull(pts)
		if len(h) < 3 {
			continue
		}
		for _, p := range pts {
			if !PointInConvexPolygon(p, h) {
				t.Fatalf("trial %d: point %v outside its own hull %v", trial, p, h)
			}
		}
	}
}

// Property: the hull of the hull is the hull (idempotence).
func TestHullIdempotent(t *testing.T) {
	f := func(coords []float64) bool {
		if len(coords) < 8 {
			return true
		}
		var pts []Point
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, Pt(norm(coords[i]), norm(coords[i+1])))
		}
		h1 := ConvexHull(pts)
		h2 := ConvexHull(h1)
		return len(h1) == len(h2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
