package geom

import "math"

// AngleAt returns the interior angle, in radians in [0, π], formed at vertex
// v by the rays v→a and v→b. This is the ang(j) of Eq. 2 in the paper when v
// is a tile corner and a, b are the adjacent corners. Degenerate inputs
// (a or b coinciding with v) yield 0.
func AngleAt(v, a, b Point) float64 {
	u := a.Sub(v)
	w := b.Sub(v)
	nu, nw := u.Norm(), w.Norm()
	//rdl:allow floateq exact-zero guards division by zero only: any nonzero norm, however small, divides finely
	if nu == 0 || nw == 0 {
		return 0
	}
	cos := Clamp(u.Dot(w)/(nu*nw), -1, 1)
	return math.Acos(cos)
}

// TurnAngle returns the angle, in radians in [0, π], by which the direction
// of travel changes at vertex b on the path a→b→c. A straight continuation
// has turn angle 0; a full reversal has turn angle π. The paper's minimum
// angle constraint ("two connected segments can turn at any angle ≥ 90°")
// is equivalent to TurnAngle ≤ π/2.
func TurnAngle(a, b, c Point) float64 {
	u := b.Sub(a)
	w := c.Sub(b)
	nu, nw := u.Norm(), w.Norm()
	//rdl:allow floateq exact-zero guards division by zero only: any nonzero norm, however small, divides finely
	if nu == 0 || nw == 0 {
		return 0
	}
	cos := Clamp(u.Dot(w)/(nu*nw), -1, 1)
	return math.Acos(cos)
}

// Bisector returns the unit vector from v along the interior angle bisector
// of the corner at v formed by rays v→a and v→b. For a degenerate corner it
// falls back to the direction toward a.
func Bisector(v, a, b Point) Point {
	u := a.Sub(v).Unit()
	w := b.Sub(v).Unit()
	bis := u.Add(w)
	if ApproxZero(bis.Norm2()) {
		// Straight angle: bisector is perpendicular to either ray.
		return u.Perp()
	}
	return bis.Unit()
}

// CornerEffectiveLength implements the effective length l(j) of Fig. 6(b) in
// the paper: the corner at vertex v (between adjacent triangle vertices a
// and b) is split into two sub-corners by its bisector, and the effective
// length is the shorter of the two sub-corner bisector extents, where each
// extent is measured from v along the sub-corner's own bisector to the
// opposite triangle side (the segment a–b).
//
// Intuitively this measures how much wiring can squeeze diagonally past the
// corner: a route hugging the corner crosses the sub-corner bisector, so the
// number of routes is bounded by the extent divided by the wire pitch.
func CornerEffectiveLength(v, a, b Point) float64 {
	opp := Seg(a, b)
	half := Bisector(v, a, b)
	// Sub-corner 1 is bounded by ray v→a and the bisector; sub-corner 2 by
	// the bisector and ray v→b. Each sub-corner's own bisector direction:
	d1 := a.Sub(v).Unit().Add(half)
	d2 := b.Sub(v).Unit().Add(half)
	ext := func(dir Point) float64 {
		if ApproxZero(dir.Norm2()) {
			return 0
		}
		dir = dir.Unit()
		// Cast the ray v + t·dir against the opposite side a–b.
		hit, p := raySegment(v, dir, opp)
		if !hit {
			return 0
		}
		return v.Dist(p)
	}
	e1, e2 := ext(d1), ext(d2)
	return math.Min(e1, e2)
}

// raySegment intersects the ray origin + t·dir (t ≥ 0) with segment s.
func raySegment(origin, dir Point, s Segment) (bool, Point) {
	d2 := s.B.Sub(s.A)
	denom := dir.Cross(d2)
	if ApproxZero(denom) {
		return false, Point{}
	}
	diff := s.A.Sub(origin)
	t := diff.Cross(d2) / denom
	u := diff.Cross(dir) / denom
	if t < -Eps || u < -Eps || u > 1+Eps {
		return false, Point{}
	}
	return true, origin.Add(dir.Scale(t))
}
