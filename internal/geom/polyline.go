package geom

import "math"

// Polyline is an ordered open chain of points: the r(γ_i, γ_j) detailed
// route primitive of the paper, a list of segments connecting two access
// points.
type Polyline []Point

// Length returns the total Euclidean length of the polyline.
func (pl Polyline) Length() float64 {
	var sum float64
	for i := 1; i < len(pl); i++ {
		sum += pl[i-1].Dist(pl[i])
	}
	return sum
}

// OctilinearLength returns the length of the polyline when every segment is
// replaced by its shortest octilinear (0°/45°/90°/135°) staircase
// equivalent: for a segment with axis deltas dx, dy the staircase length is
// max+ (√2−1)·min. This is the wirelength metric of X-architecture routers
// and is what the traditional-router baseline reports.
func (pl Polyline) OctilinearLength() float64 {
	var sum float64
	for i := 1; i < len(pl); i++ {
		dx := math.Abs(pl[i].X - pl[i-1].X)
		dy := math.Abs(pl[i].Y - pl[i-1].Y)
		lo, hi := dx, dy
		if lo > hi {
			lo, hi = hi, lo
		}
		sum += hi + (math.Sqrt2-1)*lo
	}
	return sum
}

// Segments returns the polyline's consecutive segments. A polyline with
// fewer than two points has none.
func (pl Polyline) Segments() []Segment {
	if len(pl) < 2 {
		return nil
	}
	segs := make([]Segment, 0, len(pl)-1)
	for i := 1; i < len(pl); i++ {
		segs = append(segs, Seg(pl[i-1], pl[i]))
	}
	return segs
}

// Reversed returns a copy of the polyline with the point order reversed.
func (pl Polyline) Reversed() Polyline {
	out := make(Polyline, len(pl))
	for i, p := range pl {
		out[len(pl)-1-i] = p
	}
	return out
}

// DistToPoint returns the minimum distance from p to any segment of the
// polyline, together with the closest point on the polyline. A polyline with
// a single point measures to that point; an empty polyline returns +Inf.
//
//rdl:noalloc
func (pl Polyline) DistToPoint(p Point) (float64, Point) {
	if len(pl) == 0 {
		return math.Inf(1), Point{}
	}
	if len(pl) == 1 {
		return p.Dist(pl[0]), pl[0]
	}
	best := math.Inf(1)
	var bp Point
	for i := 1; i < len(pl); i++ {
		q := Seg(pl[i-1], pl[i]).ClosestPoint(p)
		if d := p.Dist(q); d < best {
			best, bp = d, q
		}
	}
	return best, bp
}

// DistToSegment returns the minimum distance between the polyline and
// segment s, together with the closest point on the polyline realizing it.
// An empty polyline returns +Inf.
//
//rdl:noalloc
func (pl Polyline) DistToSegment(s Segment) (float64, Point) {
	if len(pl) == 0 {
		return math.Inf(1), Point{}
	}
	if len(pl) == 1 {
		return s.DistToPoint(pl[0]), pl[0]
	}
	best := math.Inf(1)
	var bp Point
	for i := 1; i < len(pl); i++ {
		d, onPl, _ := Seg(pl[i-1], pl[i]).DistToSegment(s)
		if d < best {
			best, bp = d, onPl
		}
	}
	return best, bp
}

// DistToPolyline returns the minimum distance between two polylines.
//
//rdl:noalloc
func (pl Polyline) DistToPolyline(other Polyline) float64 {
	if len(pl) == 0 || len(other) == 0 {
		return math.Inf(1)
	}
	if len(other) == 1 {
		d, _ := pl.DistToPoint(other[0])
		return d
	}
	best := math.Inf(1)
	for i := 1; i < len(other); i++ {
		d, _ := pl.DistToSegment(Seg(other[i-1], other[i]))
		if d < best {
			best = d
		}
	}
	return best
}

// Simplify returns a copy of the polyline with duplicate consecutive points
// and interior points collinear with their neighbours removed. Endpoints are
// always kept.
func (pl Polyline) Simplify() Polyline {
	// Pass 1: drop consecutive duplicates.
	dedup := Polyline{pl[0]}
	for _, p := range pl[1:] {
		if !p.ApproxEq(dedup[len(dedup)-1]) {
			dedup = append(dedup, p)
		}
	}
	if len(dedup) < 3 {
		return dedup
	}
	// Pass 2: drop interior points collinear with their neighbours when the
	// direction of travel is preserved (backtracks are kept: they carry
	// geometry).
	out := Polyline{dedup[0]}
	for i := 1; i < len(dedup)-1; i++ {
		prev := out[len(out)-1]
		cur, next := dedup[i], dedup[i+1]
		if Orient(prev, cur, next) == Collinear && cur.Sub(prev).Dot(next.Sub(cur)) > 0 {
			continue
		}
		out = append(out, cur)
	}
	return append(out, dedup[len(dedup)-1])
}

// SimplifyInPlace is Simplify without the copy: duplicate and collinear
// interior points are compacted within pl's own backing array and the
// shortened slice is returned. The caller must own the backing array — the
// input slice's contents are overwritten. Output bytes are identical to
// Simplify's (pinned by TestSimplifyInPlaceMatchesSimplify); the detail
// stage's scratch-arena hot paths use this form so warm iterations stay
// allocation-free.
//
//rdl:noalloc
func (pl Polyline) SimplifyInPlace() Polyline {
	if len(pl) == 0 {
		return pl
	}
	// Pass 1: drop consecutive duplicates, compacting left. The write
	// cursor never passes the read cursor, so unread points survive.
	w := 1
	for i := 1; i < len(pl); i++ {
		if !pl[i].ApproxEq(pl[w-1]) {
			pl[w] = pl[i]
			w++
		}
	}
	pl = pl[:w]
	if len(pl) < 3 {
		return pl
	}
	// Pass 2: drop interior collinear points preserving direction of
	// travel, mirroring Simplify's second pass.
	last := pl[len(pl)-1]
	w = 1
	for i := 1; i < len(pl)-1; i++ {
		prev := pl[w-1]
		cur, next := pl[i], pl[i+1]
		if Orient(prev, cur, next) == Collinear && cur.Sub(prev).Dot(next.Sub(cur)) > 0 {
			continue
		}
		pl[w] = cur
		w++
	}
	pl[w] = last
	return pl[:w+1]
}

// MaxTurnAngle returns the largest turn angle (deviation from straight, in
// radians) over the interior vertices. Straight or two-point polylines
// return 0. The paper's minimum angle constraint requires this to stay
// ≤ π/2 (all turns at obtuse interior angles).
func (pl Polyline) MaxTurnAngle() float64 {
	var worst float64
	for i := 1; i+1 < len(pl); i++ {
		if a := TurnAngle(pl[i-1], pl[i], pl[i+1]); a > worst {
			worst = a
		}
	}
	return worst
}

// MinTurnSpacing returns the smallest distance between two consecutive
// interior turn vertices, which the paper's minimum turn-to-turn rule (w_x)
// bounds from below. Polylines with fewer than two interior vertices return
// +Inf.
func (pl Polyline) MinTurnSpacing() float64 {
	if len(pl) < 4 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for i := 2; i+1 < len(pl); i++ {
		if d := pl[i-1].Dist(pl[i]); d < best {
			best = d
		}
	}
	return best
}
