package geom

import "math"

// Circle is the C(p, rad) primitive of the paper: the circle centered at C
// with radius R. In fit routing circles model the keep-out region around a
// point of a previously routed wire or a via.
type Circle struct {
	C Point
	R float64
}

// Circ is shorthand for Circle{c, r}.
func Circ(c Point, r float64) Circle { return Circle{C: c, R: r} }

// Contains reports whether p lies inside or on the circle.
func (c Circle) Contains(p Point) bool {
	return c.C.Dist2(p) <= c.R*c.R+Eps
}

// ContainsStrict reports whether p lies strictly inside the circle beyond
// tolerance.
func (c Circle) ContainsStrict(p Point) bool {
	return c.C.Dist2(p) < c.R*c.R-Eps
}

// TangentPoints returns the two points where the tangent lines from the
// external point p touch the circle. It reports false when p lies inside
// the circle (no tangent exists). When p lies exactly on the circle both
// tangent points equal p.
func (c Circle) TangentPoints(p Point) (Point, Point, bool) {
	d2 := c.C.Dist2(p)
	r2 := c.R * c.R
	if d2 < r2-Eps {
		return Point{}, Point{}, false
	}
	if d2 <= r2+Eps {
		return p, p, true
	}
	d := math.Sqrt(d2)
	// Distance from p to each tangent point.
	l := math.Sqrt(d2 - r2)
	// Angle at p between the line to the center and each tangent line.
	alpha := math.Asin(c.R / d)
	dir := c.C.Sub(p).Unit()
	t1 := p.Add(dir.Rotate(alpha).Scale(l))
	t2 := p.Add(dir.Rotate(-alpha).Scale(l))
	return t1, t2, true
}

// TangentIntersection implements the fit-routing construction of Fig. 12 in
// the paper: given a source p_s and target p_t both outside the constraint
// circle, it finds the intersection point I of the tangent line from p_s and
// the tangent line from p_t, choosing the tangents on the same side of the
// chord p_s–p_t as "away from" the reference point ref (the tile corner the
// route wraps around; the detour must bulge away from the constraint circle
// on the side opposite the already-routed inner wires).
//
// It reports false when either endpoint is inside the circle or when the
// chosen tangent lines are parallel (which only happens in degenerate
// configurations such as p_s, p_t and the circle center being collinear with
// the circle between them at exactly matching angles).
//
//rdl:noalloc
func (c Circle) TangentIntersection(ps, pt, ref Point) (Point, bool) {
	s1, s2, ok := c.TangentPoints(ps)
	if !ok {
		return Point{}, false
	}
	t1, t2, ok := c.TangentPoints(pt)
	if !ok {
		return Point{}, false
	}
	// The detour must go around the circle on the side opposite ref. Pick,
	// for each endpoint, the tangent point on the far side of the line
	// (center → away-from-ref).
	away := c.C.Sub(ref)
	if ApproxZero(away.Norm2()) {
		away = pt.Sub(ps).Perp()
	}
	sp := farTangent(c.C, away, s1, s2)
	tp := farTangent(c.C, away, t1, t2)
	// Tangent at a point on the circle is perpendicular to the radius; using
	// the endpoint and its tangent point as the two line points is stable
	// because both are well separated for external points.
	ls := LineThrough(ps, sp)
	lt := LineThrough(pt, tp)
	if sp.ApproxEq(ps) {
		// ps on the circle: tangent line is the perpendicular to the radius.
		r := ps.Sub(c.C).Perp()
		ls = LineThrough(ps, ps.Add(r))
	}
	if tp.ApproxEq(pt) {
		r := pt.Sub(c.C).Perp()
		lt = LineThrough(pt, pt.Add(r))
	}
	return ls.Intersect(lt)
}

// farTangent chooses, of the two tangent points a and b on the circle
// centered at c, the one whose direction from the center aligns better with
// away (the "away from ref" side the detour must bulge toward).
//
//rdl:noalloc
func farTangent(c, away, a, b Point) Point {
	if a.Sub(c).Dot(away) >= b.Sub(c).Dot(away) {
		return a
	}
	return b
}

// IntersectSegment reports whether the segment s passes within the circle,
// i.e. whether the minimum distance from the center to the segment is below
// the radius (beyond tolerance).
func (c Circle) IntersectSegment(s Segment) bool {
	return s.DistToPoint(c.C) < c.R-Eps
}
