package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOrient(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	if Orient(a, b, Pt(5, 5)) != CounterClockwise {
		t.Error("left point should be CCW")
	}
	if Orient(a, b, Pt(5, -5)) != Clockwise {
		t.Error("right point should be CW")
	}
	if Orient(a, b, Pt(20, 0)) != Collinear {
		t.Error("collinear point misclassified")
	}
}

func TestOrientString(t *testing.T) {
	if Clockwise.String() != "clockwise" || CounterClockwise.String() != "counterclockwise" || Collinear.String() != "collinear" {
		t.Error("Orientation.String wrong")
	}
}

func TestSignedArea2(t *testing.T) {
	// CCW unit right triangle has area 1/2 → doubled 1.
	if got := SignedArea2(Pt(0, 0), Pt(1, 0), Pt(0, 1)); !ApproxEq(got, 1) {
		t.Errorf("SignedArea2 = %v", got)
	}
	if got := SignedArea2(Pt(0, 0), Pt(0, 1), Pt(1, 0)); !ApproxEq(got, -1) {
		t.Errorf("CW SignedArea2 = %v", got)
	}
}

func TestInCircle(t *testing.T) {
	// CCW unit circle triangle; origin inside, far point outside.
	a, b, c := Pt(1, 0), Pt(0, 1), Pt(-1, 0)
	if !InCircle(a, b, c, Pt(0, 0)) {
		t.Error("origin should be inside circumcircle")
	}
	if InCircle(a, b, c, Pt(5, 5)) {
		t.Error("far point should be outside")
	}
	// Point exactly on the circle is not strictly inside.
	if InCircle(a, b, c, Pt(0, -1)) {
		t.Error("cocircular point must not test inside")
	}
}

func TestCircumcenter(t *testing.T) {
	c, ok := Circumcenter(Pt(1, 0), Pt(0, 1), Pt(-1, 0))
	if !ok || !c.ApproxEq(Pt(0, 0)) {
		t.Errorf("Circumcenter = %v, %v", c, ok)
	}
	_, ok = Circumcenter(Pt(0, 0), Pt(1, 1), Pt(2, 2))
	if ok {
		t.Error("collinear points must have no circumcenter")
	}
}

func TestPointInTriangle(t *testing.T) {
	a, b, c := Pt(0, 0), Pt(10, 0), Pt(0, 10)
	if !PointInTriangle(Pt(2, 2), a, b, c) {
		t.Error("interior point rejected")
	}
	if !PointInTriangle(Pt(5, 0), a, b, c) {
		t.Error("edge point rejected")
	}
	if !PointInTriangle(a, a, b, c) {
		t.Error("vertex rejected")
	}
	if PointInTriangle(Pt(6, 6), a, b, c) {
		t.Error("exterior point accepted")
	}
	// Winding order must not matter.
	if !PointInTriangle(Pt(2, 2), a, c, b) {
		t.Error("CW winding rejected interior point")
	}
}

// Property: Orient is antisymmetric under swapping two arguments.
func TestOrientAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)), Pt(norm(cx), norm(cy))
		o1 := Orient(a, b, c)
		o2 := Orient(b, a, c)
		if o1 == Collinear {
			return o2 == Collinear
		}
		return o1 == -o2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Orient is invariant under cyclic rotation of its arguments.
func TestOrientCyclic(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)), Pt(norm(cx), norm(cy))
		return Orient(a, b, c) == Orient(b, c, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the circumcenter is equidistant from all three vertices.
func TestCircumcenterEquidistant(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)), Pt(norm(cx), norm(cy))
		cc, ok := Circumcenter(a, b, c)
		if !ok {
			return true // collinear: nothing to check
		}
		ra, rb, rc := cc.Dist(a), cc.Dist(b), cc.Dist(c)
		tol := 1e-6 * (1 + ra)
		return math.Abs(ra-rb) < tol && math.Abs(ra-rc) < tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the centroid of a triangle is always inside it.
func TestCentroidInsideTriangle(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Pt(norm(ax), norm(ay)), Pt(norm(bx), norm(by)), Pt(norm(cx), norm(cy))
		if Orient(a, b, c) == Collinear {
			return true
		}
		return PointInTriangle(Centroid(a, b, c), a, b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
