package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestArcBasics(t *testing.T) {
	a := Arc{C: Circ(Pt(0, 0), 2), Start: 0, Sweep: math.Pi}
	if !ApproxEq(a.Length(), 2*math.Pi) {
		t.Errorf("half-circle length = %v", a.Length())
	}
	if !a.PointAt(0).ApproxEq(Pt(2, 0)) {
		t.Errorf("PointAt(0) = %v", a.PointAt(0))
	}
	if !a.PointAt(1).ApproxEq(Pt(-2, 0)) {
		t.Errorf("PointAt(1) = %v", a.PointAt(1))
	}
	if !a.PointAt(0.5).ApproxEq(Pt(0, 2)) {
		t.Errorf("PointAt(0.5) = %v", a.PointAt(0.5))
	}
	if !ApproxEq(a.Chord(), 4) {
		t.Errorf("half-circle chord = %v", a.Chord())
	}
	// Negative sweep has the same length.
	b := Arc{C: a.C, Start: 0, Sweep: -math.Pi}
	if b.Length() != a.Length() {
		t.Error("sweep sign changed arc length")
	}
}

func TestOptimalWrapLengthClear(t *testing.T) {
	// Segment clears the circle: the straight distance is optimal.
	c := Circ(Pt(0, 5), 1)
	l, ok := OptimalWrapLength(Pt(-10, 0), Pt(10, 0), c)
	if !ok || !ApproxEq(l, 20) {
		t.Errorf("clear path = %v, %v", l, ok)
	}
}

func TestOptimalWrapLengthSymmetric(t *testing.T) {
	// Classic configuration: wrap a unit circle centered between the
	// endpoints. For a = (-d, 0), b = (d, 0), r = 1:
	// length = 2·sqrt(d²−1) + φ with φ = π − 2·acos(1/d).
	d := 3.0
	c := Circ(Pt(0, 0), 1)
	l, ok := OptimalWrapLength(Pt(-d, 0), Pt(d, 0), c)
	if !ok {
		t.Fatal("wrap failed")
	}
	want := 2*math.Sqrt(d*d-1) + (math.Pi - 2*math.Acos(1/d))
	if math.Abs(l-want) > 1e-9 {
		t.Errorf("wrap length = %v, want %v", l, want)
	}
	// And it must beat the naive over-the-top square detour.
	if l >= 2*d+2 {
		t.Error("taut path longer than crude detour")
	}
}

func TestOptimalWrapLengthInterior(t *testing.T) {
	c := Circ(Pt(0, 0), 2)
	if _, ok := OptimalWrapLength(Pt(0.5, 0), Pt(5, 0), c); ok {
		t.Error("interior endpoint must fail")
	}
}

func TestWrapApexAtLeastOptimal(t *testing.T) {
	c := Circ(Pt(0, 0), 1)
	a, b := Pt(-3, 0), Pt(3, 0)
	ref := Pt(0, -10)
	opt, ok := OptimalWrapLength(a, b, c)
	if !ok {
		t.Fatal("optimal failed")
	}
	apex, ok := WrapApexLength(a, b, c, ref)
	if !ok {
		t.Fatal("apex failed")
	}
	if apex < opt-1e-9 {
		t.Fatalf("chord approximation %v beat the optimum %v", apex, opt)
	}
	// For this moderate wrap the chord approximation stays within 5%.
	if apex > opt*1.05 {
		t.Errorf("apex %v too far above optimum %v", apex, opt)
	}
}

// Property: over random legal configurations the fit-routing chord
// approximation is bounded below by the taut-string optimum and above by a
// modest constant factor (the Theorem 2 "good approximation" claim). The
// factor 4/π ≈ 1.273 bounds the arc-to-tangent-chords ratio for wraps up to
// a half circle, and the straight tangent legs only dilute it.
func TestWrapApproximationRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	checked := 0
	for trial := 0; trial < 500; trial++ {
		r := 0.5 + rng.Float64()*2
		c := Circ(Pt(0, 0), r)
		angA := rng.Float64() * 2 * math.Pi
		angB := rng.Float64() * 2 * math.Pi
		da := r * (1.05 + rng.Float64()*4)
		db := r * (1.05 + rng.Float64()*4)
		a := Pt(math.Cos(angA), math.Sin(angA)).Scale(da)
		b := Pt(math.Cos(angB), math.Sin(angB)).Scale(db)
		if !c.IntersectSegment(Seg(a, b)) {
			continue // no wrap needed; nothing to compare
		}
		opt, ok := OptimalWrapLength(a, b, c)
		if !ok {
			continue
		}
		// The detour side: away from the segment's side of the center.
		q := Seg(a, b).ClosestPoint(c.C)
		away := q.Sub(c.C)
		if ApproxZero(away.Norm()) {
			continue
		}
		ref := c.C.Sub(away)
		apex, ok := WrapApexLength(a, b, c, ref)
		if !ok {
			continue
		}
		checked++
		if apex < opt-1e-6 {
			t.Fatalf("trial %d: apex %v < optimum %v", trial, apex, opt)
		}
		if apex > opt*4/math.Pi+1e-6 {
			t.Fatalf("trial %d: apex %v exceeds %v × 4/π", trial, apex, opt)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d wrap configurations checked", checked)
	}
}
