package geom

import (
	"fmt"
	"math"
)

// Point is a location in the 2-D plane. It doubles as a 2-D vector; the
// vector methods (Add, Sub, Scale, Dot, Cross, ...) treat it as one.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// String formats the point as "(x, y)" with compact precision.
func (p Point) String() string { return fmt.Sprintf("(%.4g, %.4g)", p.X, p.Y) }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the 3-D cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Unit returns the unit vector in the direction of p. The zero vector is
// returned unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	//rdl:allow floateq exact-zero guards division by zero only: any nonzero norm, however small, divides finely
	if n == 0 {
		return p
	}
	return Point{p.X / n, p.Y / n}
}

// Perp returns p rotated 90° counterclockwise.
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

// Rotate returns p rotated by theta radians counterclockwise about the
// origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// Lerp returns the linear interpolation between p and q at parameter t,
// with t=0 yielding p and t=1 yielding q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// ApproxEq reports whether p and q coincide within Eps per coordinate.
func (p Point) ApproxEq(q Point) bool {
	return ApproxEq(p.X, q.X) && ApproxEq(p.Y, q.Y)
}

// Mid returns the midpoint of p and q.
func Mid(p, q Point) Point { return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2} }

// Centroid returns the arithmetic mean of the given points. It panics if
// called with no points.
func Centroid(pts ...Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of no points")
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// Rect is an axis-aligned rectangle defined by its minimum and maximum
// corners. A Rect with Min == Max is a degenerate (empty-area) rectangle but
// still contains its single point.
type Rect struct {
	Min, Max Point
}

// R builds a Rect from two opposite corners given in any order.
func R(x0, y0, x1, y1 float64) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{Min: Point{x0, y0}, Max: Point{x1, y1}}
}

// W returns the width of the rectangle.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height of the rectangle.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Center returns the center point of the rectangle.
func (r Rect) Center() Point { return Mid(r.Min, r.Max) }

// Area returns the area of the rectangle.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Contains reports whether p lies inside r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether s lies entirely inside r (boundary inclusive).
func (r Rect) ContainsRect(s Rect) bool {
	return r.Contains(s.Min) && r.Contains(s.Max)
}

// Intersects reports whether r and s overlap (boundary touch counts).
func (r Rect) Intersects(s Rect) bool {
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Expand returns r grown by d on every side. Negative d shrinks it; the
// result may become inverted if d is too negative, which callers must guard
// against themselves.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// BoundingRect returns the axis-aligned bounding rectangle of the points.
// It panics if called with no points.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of no points")
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}
