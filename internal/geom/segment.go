package geom

import "math"

// Segment is the closed line segment between two endpoints A and B. This is
// the s(p_i, p_j) primitive of the paper.
type Segment struct {
	A, B Point
}

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Len returns the Euclidean length of the segment.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

// Dir returns the unit direction vector from A to B. Degenerate segments
// yield the zero vector.
func (s Segment) Dir() Point { return s.B.Sub(s.A).Unit() }

// Mid returns the midpoint of the segment.
func (s Segment) Mid() Point { return Mid(s.A, s.B) }

// At returns the point at parameter t along the segment (t=0 → A, t=1 → B).
func (s Segment) At(t float64) Point { return s.A.Lerp(s.B, t) }

// Reversed returns the segment with its endpoints swapped.
func (s Segment) Reversed() Segment { return Segment{A: s.B, B: s.A} }

// ClosestParam returns the parameter t in [0, 1] of the point on s closest
// to p.
func (s Segment) ClosestParam(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Norm2()
	//rdl:allow floateq exact-zero guards division by zero only: any nonzero norm, however small, divides finely
	if l2 == 0 {
		return 0
	}
	return Clamp(p.Sub(s.A).Dot(d)/l2, 0, 1)
}

// ClosestPoint returns the point on s closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	return s.At(s.ClosestParam(p))
}

// DistToPoint returns the distance from p to the closest point on s.
func (s Segment) DistToPoint(p Point) float64 {
	return p.Dist(s.ClosestPoint(p))
}

// DistToSegment returns the minimum distance between segments s and t, which
// is zero when they intersect. It also returns the closest pair of points
// (one on each segment) realizing that distance. For disjoint segments the
// minimum is realized at an endpoint of one against the other, so the four
// endpoint projections are checked explicitly.
//
//rdl:noalloc
func (s Segment) DistToSegment(t Segment) (float64, Point, Point) {
	if hit, p := s.Intersection(t); hit {
		return 0, p, p
	}
	ps, pt := s.A, t.ClosestPoint(s.A)
	best := ps.Dist(pt)
	if q := t.ClosestPoint(s.B); s.B.Dist(q) < best {
		best, ps, pt = s.B.Dist(q), s.B, q
	}
	if q := s.ClosestPoint(t.A); t.A.Dist(q) < best {
		best, ps, pt = t.A.Dist(q), q, t.A
	}
	if q := s.ClosestPoint(t.B); t.B.Dist(q) < best {
		best, ps, pt = t.B.Dist(q), q, t.B
	}
	return best, ps, pt
}

// Intersects reports whether s and t share at least one point, including
// endpoint touches and collinear overlap.
func (s Segment) Intersects(t Segment) bool {
	o1 := Orient(s.A, s.B, t.A)
	o2 := Orient(s.A, s.B, t.B)
	o3 := Orient(t.A, t.B, s.A)
	o4 := Orient(t.A, t.B, s.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear special cases: check projection overlap.
	if o1 == Collinear && onSegmentCollinear(s, t.A) {
		return true
	}
	if o2 == Collinear && onSegmentCollinear(s, t.B) {
		return true
	}
	if o3 == Collinear && onSegmentCollinear(t, s.A) {
		return true
	}
	if o4 == Collinear && onSegmentCollinear(t, s.B) {
		return true
	}
	return false
}

// Intersection returns a point common to s and t if one exists. For
// properly crossing segments it is the unique crossing point; for touching
// or collinear-overlapping segments it is one representative shared point.
//
//rdl:noalloc
func (s Segment) Intersection(t Segment) (bool, Point) {
	d1 := s.B.Sub(s.A)
	d2 := t.B.Sub(t.A)
	denom := d1.Cross(d2)
	diff := t.A.Sub(s.A)
	if !ApproxZero(denom) {
		u := diff.Cross(d2) / denom
		v := diff.Cross(d1) / denom
		const slack = 1e-12
		if u >= -slack && u <= 1+slack && v >= -slack && v <= 1+slack {
			return true, s.At(Clamp(u, 0, 1))
		}
		return false, Point{}
	}
	// Parallel. Overlap is only possible when also collinear.
	if !ApproxZero(diff.Cross(d1)) {
		return false, Point{}
	}
	for _, p := range [2]Point{t.A, t.B} {
		if onSegmentCollinear(s, p) {
			return true, p
		}
	}
	for _, p := range [2]Point{s.A, s.B} {
		if onSegmentCollinear(t, p) {
			return true, p
		}
	}
	return false, Point{}
}

// ProperlyIntersects reports whether s and t cross at a single interior
// point of both segments (no endpoint touching, no collinear overlap).
func (s Segment) ProperlyIntersects(t Segment) bool {
	o1 := Orient(s.A, s.B, t.A)
	o2 := Orient(s.A, s.B, t.B)
	o3 := Orient(t.A, t.B, s.A)
	o4 := Orient(t.A, t.B, s.B)
	return o1 != Collinear && o2 != Collinear && o3 != Collinear && o4 != Collinear &&
		o1 != o2 && o3 != o4
}

// onSegmentCollinear reports whether p, already known collinear with s, lies
// within s's bounding box (and therefore on s).
func onSegmentCollinear(s Segment, p Point) bool {
	return p.X >= math.Min(s.A.X, s.B.X)-Eps && p.X <= math.Max(s.A.X, s.B.X)+Eps &&
		p.Y >= math.Min(s.A.Y, s.B.Y)-Eps && p.Y <= math.Max(s.A.Y, s.B.Y)+Eps
}

// Line is an infinite line through two distinct points.
type Line struct {
	P, Q Point
}

// LineThrough builds the line through a and b.
func LineThrough(a, b Point) Line { return Line{P: a, Q: b} }

// Intersect returns the intersection point of lines l and m, reporting false
// when they are parallel (or identical).
func (l Line) Intersect(m Line) (Point, bool) {
	d1 := l.Q.Sub(l.P)
	d2 := m.Q.Sub(m.P)
	denom := d1.Cross(d2)
	if ApproxZero(denom) {
		return Point{}, false
	}
	u := m.P.Sub(l.P).Cross(d2) / denom
	return l.P.Add(d1.Scale(u)), true
}

// Side returns the orientation of p relative to the directed line l.
func (l Line) Side(p Point) Orientation { return Orient(l.P, l.Q, p) }

// Project returns the orthogonal projection of p onto the line.
func (l Line) Project(p Point) Point {
	d := l.Q.Sub(l.P)
	l2 := d.Norm2()
	//rdl:allow floateq exact-zero guards division by zero only: any nonzero norm, however small, divides finely
	if l2 == 0 {
		return l.P
	}
	t := p.Sub(l.P).Dot(d) / l2
	return l.P.Add(d.Scale(t))
}

// DistToPoint returns the distance from p to the line.
func (l Line) DistToPoint(p Point) float64 { return p.Dist(l.Project(p)) }
