// Congestion study: the Fig. 2 motivation of the paper made concrete. The
// same design is routed with the any-angle router and the X-architecture
// baseline; the example reports the wirelength gap, the channel-utilization
// series behind it, and where the extra X-architecture length comes from
// (staircase detours on oblique nets).
//
//	go run ./examples/congestion
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"rdlroute/internal/bench"
	"rdlroute/internal/design"
	"rdlroute/internal/router"
	"rdlroute/internal/xarch"
)

func main() {
	log.SetFlags(0)

	// The analytical series of Fig. 2: how much of a routing channel a
	// fixed-orientation router can use, by channel angle.
	bench.PrintFig2(os.Stdout, design.DefaultRules())

	// The same effect measured on a real design.
	const name = "dense2"
	d, err := design.GenerateDense(name)
	if err != nil {
		log.Fatal(err)
	}
	ours, err := router.Route(context.Background(), d, router.Options{TimeBudget: 60 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	d2, err := design.GenerateDense(name)
	if err != nil {
		log.Fatal(err)
	}
	cai, err := xarch.Route(context.Background(), d2, xarch.Options{TimeBudget: 60 * time.Second})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured on %s:\n", name)
	fmt.Printf("  any-angle:      %8.0f µm (%v)\n",
		ours.Metrics.Wirelength, ours.Metrics.Runtime.Round(time.Millisecond))
	fmt.Printf("  X-architecture: %8.0f µm (%v)\n",
		cai.Wirelength, cai.Runtime.Round(time.Millisecond))
	fmt.Printf("  any-angle saves %.1f%%\n",
		100*(cai.Wirelength-ours.Metrics.Wirelength)/cai.Wirelength)

	// Per-net gap distribution: which nets pay the biggest staircase tax.
	fmt.Println("\nworst five nets for the X-architecture router:")
	type gap struct {
		net   int
		ours  float64
		cai   float64
		ratio float64
	}
	var gaps []gap
	for ni := range d.Nets {
		ro := ours.DetailResult.Routes[ni]
		rc := cai.DetailResult.Routes[ni]
		if ro == nil || rc == nil {
			continue
		}
		g := gap{net: ni, ours: ro.Wirelength(), cai: rc.Wirelength()}
		if g.ours > 0 {
			g.ratio = g.cai / g.ours
		}
		gaps = append(gaps, g)
	}
	for k := 0; k < 5; k++ {
		best := -1
		for i := range gaps {
			if best == -1 || gaps[i].ratio > gaps[best].ratio {
				best = i
			}
		}
		if best == -1 {
			break
		}
		g := gaps[best]
		fmt.Printf("  net %-3d any-angle %7.1f µm, X-arch %7.1f µm (%.2fx)\n",
			g.net, g.ours, g.cai, g.ratio)
		gaps = append(gaps[:best], gaps[best+1:]...)
	}
}
