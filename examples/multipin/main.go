// Multi-pin nets and keep-outs: extends dense1 with a four-pin clock net
// (decomposed into spanning-tree subnets sharing one connectivity group)
// and a keep-out cavity in the routing channel, then routes everything and
// reports how the group and the obstacle were handled.
//
//	go run ./examples/multipin
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/geom"
	"rdlroute/internal/router"
	"rdlroute/internal/svg"
)

func main() {
	log.SetFlags(0)

	d, err := design.GenerateDense("dense1")
	if err != nil {
		log.Fatal(err)
	}

	// A 4-pin clock net spanning both chips.
	c0 := d.Chips[0].Outline
	c1 := d.Chips[1].Outline
	subnets, err := d.AddMultiPinNet("clk", []design.PadSpec{
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Min.Y+60)},
		{Chip: 1, Pos: geom.Pt(c1.Min.X, c1.Min.Y+60)},
		{Chip: 1, Pos: geom.Pt(c1.Min.X, c1.Max.Y-60)},
		{Chip: 0, Pos: geom.Pt(c0.Max.X, c0.Max.Y-60)},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clk net decomposed into %d spanning-tree subnets: %v\n", len(subnets), subnets)

	// A keep-out cavity in the middle of the channel.
	keepout := design.Obstacle{Name: "cavity", Rect: geom.R(1790, 1000, 1870, 1300)}
	if err := d.AddObstacle(keepout); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("keep-out %v added\n", keepout.Rect)

	out, err := router.Route(context.Background(), d, router.Options{TimeBudget: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	m := out.Metrics
	fmt.Printf("\nrouted %d/%d nets (%.1f%%), wirelength %.0f µm, %d vias, %v\n",
		m.RoutedNets, m.TotalNets, m.Routability*100, m.Wirelength, m.Vias,
		m.Runtime.Round(time.Millisecond))

	// The clock group's own wirelength.
	var clkWL float64
	for _, ni := range subnets {
		if rt := out.DetailResult.Routes[ni]; rt != nil {
			clkWL += rt.Wirelength()
		}
	}
	fmt.Printf("clk group wirelength: %.0f µm over %d subnets\n", clkWL, len(subnets))

	// Confirm nothing touches the keep-out.
	hits := 0
	for _, v := range out.Violations {
		if v.Kind == detail.ObstacleViolation {
			hits++
		}
	}
	fmt.Printf("keep-out violations: %d\n", hits)

	// Render layer 0 with the clock routes visible.
	if err := os.MkdirAll("out", 0o755); err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("out/multipin_layer0.svg")
	if err != nil {
		log.Fatal(err)
	}
	if err := svg.Render(f, d, out.DetailResult.Routes, svg.Options{Layer: 0, ShowVias: true}); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote out/multipin_layer0.svg")
}
