// Quickstart: generate the smallest benchmark, route it with the any-angle
// RDL router, and print the headline metrics plus a per-net summary.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/router"
)

func main() {
	log.SetFlags(0)

	// dense1: two chips, 22 nets, two RDL wire layers.
	d, err := design.GenerateDense("dense1")
	if err != nil {
		log.Fatal(err)
	}
	s := d.Stats()
	fmt.Printf("design %s: %d chips, %d I/O pads, %d bump pads, %d nets, %d wire layers\n",
		s.Name, s.Chips, s.IOPads, s.BumpPads, s.Nets, s.WireLayers)

	out, err := router.Route(context.Background(), d, router.Options{TimeBudget: 30 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	m := out.Metrics
	fmt.Printf("routability  %.1f%% (%d/%d nets)\n", m.Routability*100, m.RoutedNets, m.TotalNets)
	fmt.Printf("wirelength   %.0f µm (sum of pin-to-pin lower bounds: %.0f µm)\n",
		m.Wirelength, d.TotalHPWL())
	fmt.Printf("vias         %d\n", m.Vias)
	fmt.Printf("runtime      %v\n", m.Runtime.Round(time.Millisecond))
	fmt.Printf("DRC          %d violations\n", m.DRCViolations)

	fmt.Println("\nfirst five nets:")
	for ni, rt := range out.DetailResult.Routes {
		if ni >= 5 || rt == nil {
			break
		}
		var pts int
		for _, seg := range rt.Segs {
			pts += len(seg.Pl)
		}
		fmt.Printf("  net %-3d wirelength %7.1f µm, %d layer segment(s), %d vias, %d vertices\n",
			rt.Net, rt.Wirelength(), len(rt.Segs), len(rt.Vias), pts)
	}
}
