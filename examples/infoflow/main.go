// InFO flow: route a multi-layer package (dense3: five chips, three wire
// layers), inspect per-layer utilization and via usage, and emit one SVG
// per wire layer — the workflow of a packaging engineer checking an InFO
// RDL design layer by layer.
//
//	go run ./examples/infoflow
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/router"
	"rdlroute/internal/svg"
)

func main() {
	log.SetFlags(0)

	d, err := design.GenerateDense("dense3")
	if err != nil {
		log.Fatal(err)
	}
	out, err := router.Route(context.Background(), d, router.Options{TimeBudget: 60 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	m := out.Metrics
	fmt.Printf("%s routed: %.1f%% routability, %.0f µm, %d vias, %v\n",
		d.Name, m.Routability*100, m.Wirelength, m.Vias, m.Runtime.Round(time.Millisecond))

	// Per-layer breakdown: wirelength and net count on each wire layer.
	fmt.Println("\nper-layer utilization:")
	for layer := 0; layer < d.WireLayers; layer++ {
		var wl float64
		nets := map[int]bool{}
		for _, rl := range detail.SegmentsOnLayer(out.DetailResult.Routes, layer) {
			wl += rl.Pl.Length()
			nets[rl.Net] = true
		}
		fmt.Printf("  wire layer %d: %8.0f µm over %3d nets\n", layer, wl, len(nets))
	}

	// Via usage per via layer.
	viaCount := map[int]int{}
	for _, rt := range out.DetailResult.Routes {
		if rt == nil {
			continue
		}
		for _, v := range rt.Vias {
			viaCount[v.Layer]++
		}
	}
	fmt.Println("\nvia usage:")
	for vl := 0; vl < d.WireLayers-1; vl++ {
		fmt.Printf("  via layer %d-%d: %d vias\n", vl, vl+1, viaCount[vl])
	}

	// Per-layer SVGs.
	outDir := "out"
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	for layer := 0; layer < d.WireLayers; layer++ {
		path := filepath.Join(outDir, fmt.Sprintf("dense3_layer%d.svg", layer))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		err = svg.Render(f, d, out.DetailResult.Routes, svg.Options{
			Layer:     layer,
			ShowVias:  true,
			ShowBumps: layer == d.WireLayers-1,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}
}
