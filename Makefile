# CI tiers for rdlroute. tier1 is the merge gate; tier2 adds vet, the
# domain lint suite and the race detector (slower, run before shipping
# concurrency-touching changes).

GO ?= go

.PHONY: all tier1 tier2 race-gate lint lint-escape fmt-check bench bench-serve bench-drc bench-route alloc-gate fmt

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2: lint
	$(GO) vet ./...
	$(GO) test -race ./...

# Focused race gate over the concurrency-bearing packages: the parallel
# DRC/verify engines, tile routing and layer-reassignment pass of the
# detail stage, the global router's speculative multi-net stage and
# ordering pool, the ordering-strategy portfolio racer, the pipeline
# facade's Parallelism propagation (including the via-accounting
# differential across Parallelism 1/2/4/8) and the serving layer. Faster
# than a full tier2 run.
race-gate: lint lint-escape
	$(GO) vet ./...
	$(GO) test -race ./internal/detail/ ./internal/global/ ./internal/verify/ ./internal/serve/ ./internal/router/ ./internal/portfolio/

# Domain-specific static analysis (internal/lint): determinism, map
# iteration, float equality, sanctioned concurrency, the //rdl:noalloc
# hot-path contract — propagated interprocedurally through the module
# call graph — and the speculative read-set pairing rule in
# internal/global. Exit 1 on any finding; see doc/LINT.md.
lint:
	$(GO) run ./cmd/rdllint

# Compiler-backed escape gate: replays `go build -gcflags=-m=2`
# diagnostics and fails if the optimizer moves anything to the heap
# inside a //rdl:noalloc body beyond the audited sites — the second line
# of defence behind the AST noalloc/transalloc passes.
lint-escape:
	$(GO) run ./cmd/rdllint -escape

# fmt-check fails (and prints the offenders) when any file needs gofmt,
# without rewriting anything — the CI-side counterpart of `make fmt`.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Serving-layer throughput (jobs/sec at pool sizes 1/2/4, cold vs. cache
# hit). Writes machine-readable results to BENCH_serve.json.
bench-serve:
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test -run '^$$' -bench BenchmarkServeThroughput -benchmem ./internal/serve/

# Design-rule checker, serial vs. parallel pool sizes on the dense
# benchmarks. Writes machine-readable results (ms/check, speedup vs the
# workers=1 reference, host CPU count) to BENCH_drc.json.
bench-drc:
	BENCH_DRC_OUT=$(CURDIR)/BENCH_drc.json \
		$(GO) test -run '^$$' -bench BenchmarkDRC -benchmem ./internal/detail/

# Routing hot path: global A*/rip-up and detailed routing per dense case,
# plus the K=3 ordering-portfolio race end to end. Writes ns/op, allocs/op
# and B/op to BENCH_route.json — the allocation counts are the
# zero-allocation A* regression gate. Global entries also carry
# speculation_hit_rate and speedup_vs_serial (default Parallelism vs the
# serial reference; both produce byte-identical results; the speedup is
# null with a note on 1-CPU hosts). Portfolio entries carry per-strategy
# scores, the winner and beats_rudy.
bench-route:
	BENCH_ROUTE_OUT=$(CURDIR)/BENCH_route.json \
		$(GO) test -run '^$$' -bench 'BenchmarkGlobalRoute|BenchmarkDetailRoute|BenchmarkPortfolioRoute' -benchmem .

# Allocation regression gate, locally runnable: a one-iteration pass over
# the routing benchmarks (allocs/op is exact even at -benchtime=1x since
# every op runs its stage cold) checked against cmd/allocgate's pinned
# per-stage budgets. Fails on a >10% allocs/op regression; CI's bench-smoke
# job runs the same gate. The scratch JSON is removed first so a stale file
# can never mask a missing row.
alloc-gate:
	rm -f $(CURDIR)/.bench_route_smoke.json
	BENCH_ROUTE_OUT=$(CURDIR)/.bench_route_smoke.json \
		$(GO) test -run '^$$' -bench 'BenchmarkGlobalRoute|BenchmarkDetailRoute' -benchtime=1x .
	$(GO) run ./cmd/allocgate -in $(CURDIR)/.bench_route_smoke.json

fmt:
	gofmt -l -w .
