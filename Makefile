# CI tiers for rdlroute. tier1 is the merge gate; tier2 adds vet and the
# race detector (slower, run before shipping concurrency-touching changes).

GO ?= go

.PHONY: all tier1 tier2 bench bench-serve fmt

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Serving-layer throughput (jobs/sec at pool sizes 1/2/4, cold vs. cache
# hit). Writes machine-readable results to BENCH_serve.json.
bench-serve:
	BENCH_SERVE_OUT=$(CURDIR)/BENCH_serve.json \
		$(GO) test -run '^$$' -bench BenchmarkServeThroughput -benchmem ./internal/serve/

fmt:
	gofmt -l -w .
