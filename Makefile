# CI tiers for rdlroute. tier1 is the merge gate; tier2 adds vet and the
# race detector (slower, run before shipping concurrency-touching changes).

GO ?= go

.PHONY: all tier1 tier2 bench fmt

all: tier1

tier1:
	$(GO) build ./...
	$(GO) test ./...

tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

fmt:
	gofmt -l -w .
