// Routing hot-path benchmarks: the global-routing stage (crossing-aware A*
// with rip-up rounds) and the detailed-routing stage (DP adjustment + tile
// fit routing), isolated per dense benchmark. `make bench-route` runs them
// and writes BENCH_route.json with ns/op, B/op, allocs/op and the host CPU
// count, so the allocation trajectory of the hot path is tracked next to the
// wall-clock one (on a 1-CPU host the allocation columns are the signal).
package rdlroute_test

import (
	"context"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"rdlroute/internal/benchjson"
	"rdlroute/internal/design"
	"rdlroute/internal/detail"
	"rdlroute/internal/global"
	"rdlroute/internal/pool"
	"rdlroute/internal/portfolio"
	"rdlroute/internal/rgraph"
	"rdlroute/internal/router"
	"rdlroute/internal/viaplan"
)

// routeBenchResults accumulates the last run of every route sub-benchmark;
// TestMain writes them as BENCH_route.json when BENCH_ROUTE_OUT is set.
var routeBenchResults = struct {
	mu sync.Mutex
	m  map[string]benchjson.Entry
}{m: make(map[string]benchjson.Entry)}

func recordRouteBench(e benchjson.Entry) {
	routeBenchResults.mu.Lock()
	routeBenchResults.m[e["name"].(string)] = e
	routeBenchResults.mu.Unlock()
}

// amendRouteBench merges extra fields into an already recorded entry.
func amendRouteBench(name string, extra benchjson.Entry) {
	routeBenchResults.mu.Lock()
	if e, ok := routeBenchResults.m[name]; ok {
		for k, v := range extra {
			e[k] = v
		}
	}
	routeBenchResults.mu.Unlock()
}

// seedDetailAllocs pins the detail stage's allocs/op per dense case as of
// the seed of the zero-allocation overhaul (the commit before the flat
// spatial hash and scratch arenas landed). TestMain divides these by the
// measured allocs/op into an allocs_vs_seed improvement factor, so the
// optimization is a tracked series in BENCH_route.json rather than a
// one-off claim; cmd/allocgate enforces the absolute budgets.
var seedDetailAllocs = map[string]float64{
	"dense1": 28413,
	"dense2": 77882,
	"dense3": 123626,
	"dense4": 197649,
	"dense5": 654218,
}

func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_ROUTE_OUT"); path != "" && code == 0 {
		routeBenchResults.mu.Lock()
		// Detail rows carry the allocation trajectory against the pinned
		// seed, and the same single-CPU note global rows get: tile routing
		// and assembly fan out over the same pool, so on a 1-CPU host their
		// wall-clock is serial throughput and allocs/op is the signal.
		for _, e := range routeBenchResults.m {
			if e["stage"] != "detail" {
				continue
			}
			cse, _ := e["case"].(string)
			if seed, ok := seedDetailAllocs[cse]; ok {
				if a, _ := e["allocs_per_op"].(float64); a > 0 {
					e["seed_allocs_per_op"] = seed
					e["allocs_vs_seed"] = seed / a
				}
			}
			if runtime.NumCPU() == 1 {
				e["note"] = "single-CPU host: pool is timesliced, speedup not measurable"
			}
		}
		// Pair each parallel global entry with its serial reference into a
		// measured speedup: both runs produce byte-identical results, so
		// the ratio is pure scheduling gain (1.0 on a single-CPU host).
		for key, e := range routeBenchResults.m {
			if e["stage"] != "global" || strings.HasSuffix(key, "/serial") {
				continue
			}
			se, ok := routeBenchResults.m[key+"/serial"]
			if !ok {
				continue
			}
			sn, _ := se["ns_per_op"].(float64)
			pn, _ := e["ns_per_op"].(float64)
			if sn > 0 && pn > 0 {
				if runtime.NumCPU() == 1 {
					// A 1-CPU host timeslices the pool, so the ratio is
					// scheduler noise, not parallel speedup; null keeps the
					// column honest and the note says why.
					e["speedup_vs_serial"] = nil
					e["note"] = "single-CPU host: pool is timesliced, speedup not measurable"
				} else {
					e["speedup_vs_serial"] = sn / pn
				}
			}
		}
		out := make([]benchjson.Entry, 0, len(routeBenchResults.m))
		for _, e := range routeBenchResults.m {
			out = append(out, e)
		}
		routeBenchResults.mu.Unlock()
		if err := benchjson.MergeWrite(path, out); err != nil {
			println("bench json:", err.Error())
			code = 1
		}
	}
	os.Exit(code)
}

// builtCase caches the design, via plan and routing graph per dense case so
// the global and detail benchmarks share one build.
var builtCase = func() func(tb testing.TB, name string) *rgraph.Graph {
	var mu sync.Mutex
	cache := map[string]*rgraph.Graph{}
	return func(tb testing.TB, name string) *rgraph.Graph {
		tb.Helper()
		mu.Lock()
		defer mu.Unlock()
		if g, ok := cache[name]; ok {
			return g
		}
		d, err := design.GenerateDense(name)
		if err != nil {
			tb.Fatal(err)
		}
		plan, err := viaplan.Build(d, viaplan.Options{})
		if err != nil {
			tb.Fatal(err)
		}
		g, err := rgraph.Build(d, plan, rgraph.Options{})
		if err != nil {
			tb.Fatal(err)
		}
		cache[name] = g
		return g
	}
}()

// measureLoop runs fn b.N times between mem-stat snapshots and records the
// per-op numbers under name. The explicit ReadMemStats pair mirrors what
// -benchmem reports, but makes the numbers available for BENCH_route.json.
func measureLoop(b *testing.B, name, stage, cse string, fn func()) {
	b.Helper()
	b.ReportAllocs()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	n := float64(b.N)
	recordRouteBench(benchjson.Entry{
		"name":          name,
		"stage":         stage,
		"case":          cse,
		"ns_per_op":     float64(b.Elapsed().Nanoseconds()) / n,
		"allocs_per_op": float64(after.Mallocs-before.Mallocs) / n,
		"bytes_per_op":  float64(after.TotalAlloc-before.TotalAlloc) / n,
		"n":             b.N,
		"cpus":          runtime.NumCPU(),
	})
}

// BenchmarkGlobalRoute measures the global-routing stage alone: the graph is
// prebuilt, each iteration runs a fresh router over it (RUDY ordering,
// crossing-aware A*, rip-up rounds, diagonal refinement). Each case runs
// twice — at the default Parallelism (GOMAXPROCS, capped at 8) and at the
// serial reference — and the parallel entry additionally records the
// speculation hit rate; TestMain derives speedup_vs_serial from the pair.
func BenchmarkGlobalRoute(b *testing.B) {
	for _, name := range design.DenseNames() {
		b.Run(name, func(b *testing.B) {
			g := builtCase(b, name)
			var last *global.Result
			measureLoop(b, "global/"+name, "global", name, func() {
				r := global.New(g, global.Options{})
				res, err := r.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.Routability() == 0 {
					b.Fatal("routed nothing")
				}
				last = res
			})
			rate := 0.0
			if t := last.SpeculationHits + last.SpeculationMisses; t > 0 {
				rate = float64(last.SpeculationHits) / float64(t)
			}
			amendRouteBench("global/"+name, benchjson.Entry{
				"speculation_hit_rate": rate,
				"parallelism":          pool.Default(0),
			})
		})
		b.Run(name+"/serial", func(b *testing.B) {
			g := builtCase(b, name)
			measureLoop(b, "global/"+name+"/serial", "global", name, func() {
				r := global.New(g, global.Options{Parallelism: 1})
				res, err := r.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.Routability() == 0 {
					b.Fatal("routed nothing")
				}
			})
		})
	}
}

// BenchmarkPortfolioRoute measures the portfolio race end to end: the full
// pipeline (via planning, graph build, K racing global+detail attempts,
// DRC) per dense case with the canonical K=3 portfolio. Besides timing it
// records one BENCH_route.json row per strategy plus the winner and
// whether the race beat the RUDY-only baseline on the canonical objective
// — the evidence the JSON keeps for the portfolio's value. The smoke
// sub-run races two strategies on dense1 so bench-smoke (-benchtime=1x)
// exercises the harness in one cheap iteration.
func BenchmarkPortfolioRoute(b *testing.B) {
	race := func(b *testing.B, key, cse string, names []string) {
		d, err := design.GenerateDense(cse)
		if err != nil {
			b.Fatal(err)
		}
		var out *router.Output
		measureLoop(b, key, "portfolio", cse, func() {
			var err error
			out, err = router.Route(context.Background(), d, router.Options{Portfolio: names})
			if err != nil {
				b.Fatal(err)
			}
		})
		var rudy *portfolio.Outcome
		for i := range out.Portfolio {
			o := &out.Portfolio[i]
			if o.Strategy == "rudy" {
				rudy = o
			}
			recordRouteBench(benchjson.Entry{
				"name":          key + "/" + o.Strategy,
				"stage":         "portfolio",
				"case":          cse,
				"strategy":      o.Strategy,
				"ok":            o.OK,
				"routability":   o.Routability,
				"wirelength_um": o.Wirelength,
				"vias":          o.Vias,
				"winner":        o.Strategy == out.Metrics.PortfolioWinner,
				"cpus":          runtime.NumCPU(),
			})
		}
		extra := benchjson.Entry{
			"strategies": strings.Join(names, ","),
			"winner":     out.Metrics.PortfolioWinner,
		}
		if rudy != nil {
			extra["beats_rudy"] = out.Metrics.Routability > rudy.Routability ||
				(out.Metrics.Routability == rudy.Routability &&
					out.Metrics.Wirelength < rudy.Wirelength)
			extra["wirelength_vs_rudy_um"] = out.Metrics.Wirelength - rudy.Wirelength
		}
		amendRouteBench(key, extra)
	}
	b.Run("smoke", func(b *testing.B) {
		race(b, "portfolio/smoke", "dense1", []string{"rudy", "netlen"})
	})
	for _, name := range design.DenseNames() {
		b.Run(name, func(b *testing.B) {
			race(b, "portfolio/"+name, name, []string{"rudy", "netlen", "congestion"})
		})
	}
}

// BenchmarkDetailRoute measures the detailed-routing stage alone: global
// routing runs once outside the timer, each iteration redoes chain building,
// DP access-point adjustment, tile fit routing and layer reassignment over
// the same guides. Besides timing, each case records a vias_vs_wirelength
// trade-off row: the via counts before/after the layer-reassignment pass
// next to the polished wirelength, the evidence BENCH_route.json keeps for
// the via objective.
func BenchmarkDetailRoute(b *testing.B) {
	for _, name := range design.DenseNames() {
		b.Run(name, func(b *testing.B) {
			g := builtCase(b, name)
			r := global.New(g, global.Options{})
			gres, err := r.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			var last *detail.Result
			measureLoop(b, "detail/"+name, "detail", name, func() {
				dres, err := detail.Run(context.Background(), r, gres, detail.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if dres.Wirelength <= 0 {
					b.Fatal("no wirelength")
				}
				last = dres
			})
			vias := 0
			for _, rt := range last.Routes {
				if rt != nil {
					vias += len(rt.Vias)
				}
			}
			amendRouteBench("detail/"+name, benchjson.Entry{
				"vias":                 vias,
				"vias_before_reassign": last.Reassign.ViasBefore,
				"vias_vs_wirelength": benchjson.Entry{
					"wirelength_um":        last.Wirelength,
					"vias":                 vias,
					"vias_before_reassign": last.Reassign.ViasBefore,
					"segments_merged":      last.Reassign.SegmentsMerged,
				},
			})
		})
	}
}
