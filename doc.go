// Package rdlroute reproduces "Any-Angle Routing for Redistribution Layers
// in 2.5D IC Packages" (Chung, Chuang, Chang — DAC 2023): the first
// any-angle routing algorithm for multiple RDLs in InFO-style advanced
// packages.
//
// The implementation lives under internal/:
//
//   - internal/geom     — 2-D computational geometry substrate
//   - internal/dt       — Bowyer–Watson Delaunay triangulation
//   - internal/design   — design model + dense1–dense5 benchmark generator
//   - internal/obs      — observability: stage spans, counters, progress,
//     and the context/deadline run-control helpers
//   - internal/viaplan  — candidate-via planning
//   - internal/rgraph   — multi-layer routing graph (Eq. 1/Eq. 2 capacities)
//   - internal/global   — crossing-aware A*, RUDY ordering, Eq. 3 refinement
//   - internal/detail   — DP access-point adjustment, fit routing, DRC
//   - internal/router   — the public pipeline facade
//   - internal/aarf     — AARF* baseline (Table III)
//   - internal/xarch    — traditional X-architecture baseline (Table II)
//   - internal/svg      — layout rendering (Fig. 14)
//   - internal/stats    — geometry analytics (angle histograms, utilization)
//   - internal/verify   — independent result verifier
//   - internal/bench    — evaluation harness for every table and figure
//
// The pipeline is context-first: router.Route (and both baselines) take a
// context.Context whose deadline degrades the run to a partial result
// (Metrics.TimedOut) while explicit cancellation aborts with an error:
//
//	out, err := router.Route(ctx, d, router.Options{TimeBudget: 30 * time.Second})
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// per-experiment index, EXPERIMENTS.md for paper-vs-measured results, and
// doc/OBSERVABILITY.md for the tracing/metrics layer.
package rdlroute
